// Package telemetry is the always-on observability layer: a metrics
// Registry of atomic counters, gauges, and fixed-bucket histograms
// cheap enough to leave enabled inside the per-tick PHY/port hot path,
// a bounded ring-buffer Tracer of typed protocol events stamped with
// simulated time, and exporters (Prometheus text exposition, JSONL
// trace dump, an HTTP handler serving both).
//
// Two properties shape the design:
//
//   - Nil-safety. Every metric handle and the Tracer are no-ops on a
//     nil receiver, so instrumented code paths need no branches: an
//     un-instrumented Network carries nil handles and pays only a
//     predicted-not-taken nil check per update (benchmarked at ~0%).
//
//   - Race-freedom by construction. All metric updates are single
//     atomic operations, and the Tracer takes a short mutex only after
//     an atomic kind-mask check, so a simulation goroutine can be
//     scraped concurrently by an HTTP exporter without a data race.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric families. All methods are safe for
// concurrent use; registration is idempotent (the same name+labels
// returns the same handle).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one metric name: its metadata plus every labeled series.
type family struct {
	name, help, typ string
	series          map[string]metric // keyed by rendered label string
}

// metric is anything the Prometheus exporter can render.
type metric interface {
	writeExposition(b *strings.Builder, name, labels string)
}

// New returns an empty Registry.
func New() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelString renders "k1=\"v1\",k2=\"v2\"" from alternating key/value
// pairs, sorted by key so registration order never changes the export.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be alternating key/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	return b.String()
}

// lookup finds or creates a family+series slot; make builds the metric
// on first registration.
func (r *Registry) lookup(name, help, typ string, labels []string, make func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: map[string]metric{}}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	ls := labelString(labels)
	m, ok := f.series[ls]
	if !ok {
		m = make()
		f.series[ls] = m
	}
	return m
}

// Counter registers (or finds) a monotone counter. Returns nil on a nil
// Registry; all Counter methods are nil-safe no-ops.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, "counter", labels, func() metric { return &Counter{} }).(*Counter)
}

// CounterFunc registers a scrape-time counter: fn is invoked at each
// export to produce the value, so state that already maintains its own
// count (the Tracer's drop tally) exports without double bookkeeping.
// Re-registration keeps the first fn. Nil-safe.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...string) {
	if r == nil || fn == nil {
		return
	}
	r.lookup(name, help, "counter", labels, func() metric { return &funcCounter{fn: fn} })
}

// funcCounter renders fn() at scrape time.
type funcCounter struct {
	fn func() uint64
}

func (c *funcCounter) writeExposition(b *strings.Builder, name, labels string) {
	writeSample(b, name, labels, float64(c.fn()))
}

// Gauge registers (or finds) a float gauge. Nil-safe like Counter.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, "gauge", labels, func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or finds) a fixed-bucket histogram. The buckets
// are upper bounds in ascending order (+Inf is implicit). Nil-safe.
// Re-registration reuses the first set of buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, "histogram", labels, func() metric {
		return newHistogram(buckets)
	}).(*Histogram)
}

// --- Counter ----------------------------------------------------------

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) writeExposition(b *strings.Builder, name, labels string) {
	writeSample(b, name, labels, float64(c.Value()))
}

// --- Gauge ------------------------------------------------------------

// Gauge is a float64 that can go up and down (stored as atomic bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increases the gauge by d (CAS loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is larger (high-water mark).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// SetMin lowers the gauge to v if v is smaller (low-water mark).
func (g *Gauge) SetMin(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) writeExposition(b *strings.Builder, name, labels string) {
	writeSample(b, name, labels, g.Value())
}

// --- Histogram --------------------------------------------------------

// Histogram counts observations into fixed buckets (upper bounds,
// ascending; a final +Inf bucket is implicit) and tracks count, sum,
// min, and max. Observe is one atomic add plus a short linear scan over
// the bucket bounds, cheap enough for per-beacon hot paths.
type Histogram struct {
	upper   []float64
	buckets []atomic.Uint64 // len(upper)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // +Inf until first Observe
	maxBits atomic.Uint64 // -Inf until first Observe
}

func newHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("telemetry: histogram buckets must be strictly ascending")
		}
	}
	h := &Histogram{
		upper:   append([]float64(nil), buckets...),
		buckets: make([]atomic.Uint64, len(buckets)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n upper bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// bucketIndex returns the bucket holding v (the last, +Inf bucket when
// v exceeds every upper bound).
func (h *Histogram) bucketIndex(v float64) int {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	return i
}

// atomicAddFloat, atomicFoldMin, and atomicFoldMax fold a value into a
// float64 stored as atomic bits. Min/max load first, so the common
// steady-state case is one plain load.
func atomicAddFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func atomicFoldMin(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func atomicFoldMax(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
	atomicFoldMin(&h.minBits, v)
	atomicFoldMax(&h.maxBits, v)
}

// HistogramBatch is a single-writer staging area for a Histogram: the
// owning goroutine Observes into plain fields (no atomic operations at
// all) and periodically Flushes the accumulated deltas into the shared
// Histogram with a bounded number of atomics. Readers of the Histogram
// lag by at most one flush interval. Use it when a hot path observes at
// a rate where even uncontended atomic adds show up in profiles — the
// core beacon path flushes once per simulated millisecond.
//
// A nil HistogramBatch (from a nil Histogram) is a valid no-op.
type HistogramBatch struct {
	h        *Histogram
	buckets  []uint64
	count    uint64
	sum      float64
	min, max float64
}

// Batch returns a new staging area for h (nil on a nil Histogram).
func (h *Histogram) Batch() *HistogramBatch {
	if h == nil {
		return nil
	}
	b := &HistogramBatch{h: h, buckets: make([]uint64, len(h.buckets))}
	b.reset()
	return b
}

func (b *HistogramBatch) reset() {
	b.count = 0
	b.sum = 0
	b.min = math.Inf(1)
	b.max = math.Inf(-1)
}

// Observe stages one sample. Not safe for concurrent use — only the
// single owning goroutine may call it.
func (b *HistogramBatch) Observe(v float64) {
	if b == nil {
		return
	}
	b.buckets[b.h.bucketIndex(v)]++
	b.count++
	b.sum += v
	if v < b.min {
		b.min = v
	}
	if v > b.max {
		b.max = v
	}
}

// Flush folds the staged observations into the Histogram and clears the
// batch. Call it from the owning goroutine.
func (b *HistogramBatch) Flush() {
	if b == nil || b.count == 0 {
		return
	}
	for i, d := range b.buckets {
		if d != 0 {
			b.h.buckets[i].Add(d)
			b.buckets[i] = 0
		}
	}
	b.h.count.Add(b.count)
	atomicAddFloat(&b.h.sumBits, b.sum)
	atomicFoldMin(&b.h.minBits, b.min)
	atomicFoldMax(&b.h.maxBits, b.max)
	b.reset()
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Min returns the smallest observation (+Inf when empty or nil).
func (h *Histogram) Min() float64 {
	if h == nil {
		return math.Inf(1)
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observation (-Inf when empty or nil).
func (h *Histogram) Max() float64 {
	if h == nil {
		return math.Inf(-1)
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile returns an estimate of the q-th quantile (0..1) by linear
// interpolation within the bucket where the cumulative count crosses
// q*total. Resolution is the bucket width; exact min/max clamp the
// extremes. NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.Count() == 0 {
		return math.NaN()
	}
	total := float64(h.Count())
	rank := q * total
	var cum float64
	for i := range h.buckets {
		cum += float64(h.buckets[i].Load())
		if cum < rank {
			continue
		}
		// Bucket i holds the rank. Interpolate within [lo, hi].
		lo := h.Min()
		if i > 0 {
			lo = h.upper[i-1]
		}
		hi := h.Max()
		if i < len(h.upper) && h.upper[i] < hi {
			hi = h.upper[i]
		}
		if lo > hi {
			lo = hi
		}
		n := float64(h.buckets[i].Load())
		if n == 0 {
			return lo
		}
		frac := (rank - (cum - n)) / n
		v := lo + frac*(hi-lo)
		if v < h.Min() {
			v = h.Min()
		}
		if v > h.Max() {
			v = h.Max()
		}
		return v
	}
	return h.Max()
}

// QuantileAbs returns the quantile of |sample| magnitude assuming a
// roughly symmetric distribution: max(Q(q), -Q(1-q)). Convenient for
// "p99 of |offset|" reporting.
func (h *Histogram) QuantileAbs(q float64) float64 {
	hiQ := h.Quantile(q)
	loQ := -h.Quantile(1 - q)
	if loQ > hiQ {
		return loQ
	}
	return hiQ
}

func (h *Histogram) writeExposition(b *strings.Builder, name, labels string) {
	var cum uint64
	for i, up := range h.upper {
		cum += h.buckets[i].Load()
		writeSample(b, name+"_bucket", joinLabels(labels, fmt.Sprintf("le=%q", formatFloat(up))), float64(cum))
	}
	cum += h.buckets[len(h.upper)].Load()
	writeSample(b, name+"_bucket", joinLabels(labels, `le="+Inf"`), float64(cum))
	writeSample(b, name+"_sum", labels, h.Sum())
	writeSample(b, name+"_count", labels, float64(h.Count()))
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}
