package eth

import "testing"

func TestProtoStrings(t *testing.T) {
	for _, p := range []Proto{ProtoBulk, ProtoPTPEvent, ProtoPTPGeneral, ProtoNTP, ProtoApp, Proto(99)} {
		if p.String() == "" {
			t.Fatal("empty Proto string")
		}
	}
}

func TestFrameClone(t *testing.T) {
	f := &Frame{Src: 1, Dst: 2, Size: MTUFrame, Proto: ProtoBulk, CorrectionPs: 42}
	c := f.Clone()
	c.CorrectionPs = 7
	if f.CorrectionPs != 42 {
		t.Fatal("clone aliases original")
	}
	if c.Src != 1 || c.Dst != 2 || c.Size != MTUFrame {
		t.Fatal("clone lost fields")
	}
}

func TestFrameString(t *testing.T) {
	f := &Frame{Src: 1, Dst: 2, Size: 64, Proto: ProtoNTP}
	if f.String() == "" {
		t.Fatal("empty frame string")
	}
}

func TestFrameSizeConstants(t *testing.T) {
	// Sanity: sizes ordered and in the ranges the paper uses.
	if !(MinFrame < PTPEventFrame && PTPEventFrame < UDPNTPFrame && UDPNTPFrame < MTUFrame && MTUFrame < JumboFrame) {
		t.Fatal("frame size constants out of order")
	}
	if MTUFrame != 1522 || JumboFrame != 9022 {
		t.Fatal("paper frame sizes changed")
	}
}
