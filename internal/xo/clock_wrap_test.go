package xo

import (
	"testing"

	"github.com/dtplab/dtp/internal/sim"
)

// TestSetCounterAtNearUint64Wrap: jumping the counter label to the top
// of the 64-bit range must keep CounterAt exact — the label then wraps
// through zero while the underlying tick phase never moves, which is
// what a DTP counter does after ~3700 years of 10 GbE uptime (or
// immediately, in a test).
func TestSetCounterAtNearUint64Wrap(t *testing.T) {
	sch := sim.NewScheduler()
	clk := NewClock(sch, sim.NewRNG(1, "wrap"), Default10G(0))
	sch.Run(sim.Microsecond)
	now := sch.Now()

	near := ^uint64(0) - 10 // 2^64 - 11
	clk.SetCounterAt(near, now)
	if got := clk.CounterAt(now); got != near {
		t.Fatalf("CounterAt after jump = %d, want %d", got, near)
	}
	// 20 ticks later (6.4 ns each) the counter has wrapped modulo 2^64.
	later := now + 20*6400*sim.Picosecond
	sch.Run(later)
	if got := clk.CounterAt(later); got != near+20 { // wraps to 9
		t.Fatalf("CounterAt across the wrap = %d, want %d", got, near+20)
	}
	if got := clk.CounterAt(later); got >= near {
		t.Fatalf("counter did not wrap: %d", got)
	}
}

// TestSetCounterAtMSBRollover: jumps across the 2^53 beacon-MSB
// boundary — the point where the transmitted LSB field rolls over and
// BEACON-MSB messages carry the change — keep tick arithmetic exact in
// both directions (CounterAt and TimeOfCount stay inverses).
func TestSetCounterAtMSBRollover(t *testing.T) {
	sch := sim.NewScheduler()
	clk := NewClock(sch, sim.NewRNG(2, "msb"), Default10G(50)) // fast clock: non-nominal period
	sch.Run(sim.Microsecond)
	now := sch.Now()

	const boundary = uint64(1) << 53
	clk.SetCounterAt(boundary-3, now)
	for n := boundary - 3; n < boundary+3; n++ {
		at := clk.TimeOfCount(n)
		if got := clk.CounterAt(at); got < n {
			t.Fatalf("CounterAt(TimeOfCount(%d)) = %d", n, got)
		}
		if at > now && clk.CounterAt(at-sim.Picosecond) >= n {
			t.Fatalf("tick %d reported before its instant", n)
		}
	}
	// Monotone across the boundary under further forward jumps.
	sch.Run(clk.TimeOfCount(boundary + 3))
	clk.SetCounterAt(boundary+100, sch.Now())
	if got := clk.Counter(); got < boundary+100 {
		t.Fatalf("counter moved backwards across MSB rollover: %d", got)
	}
}

// TestSetCounterAtBackwardPanics: the hardware register only moves
// forward (lc = max(lc, c+d)); a backward jump is a programming error.
func TestSetCounterAtBackwardPanics(t *testing.T) {
	sch := sim.NewScheduler()
	clk := NewClock(sch, sim.NewRNG(3, "back"), Default10G(0))
	sch.Run(sim.Microsecond)
	defer func() {
		if recover() == nil {
			t.Fatal("backward SetCounterAt did not panic")
		}
	}()
	clk.SetCounterAt(clk.Counter()-1, sch.Now())
}
