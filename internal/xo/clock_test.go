package xo

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/dtplab/dtp/internal/sim"
)

func newTestClock(t *testing.T, ppm float64) (*sim.Scheduler, *Clock) {
	t.Helper()
	sch := sim.NewScheduler()
	rng := sim.NewRNG(1, "xo-test")
	return sch, NewClock(sch, rng, Default10G(ppm))
}

func TestNominalCounterRate(t *testing.T) {
	sch, c := newTestClock(t, 0)
	sch.Run(sim.Second)
	// 156.25 MHz for one second = 156,250,000 ticks.
	got := c.Counter()
	if got != 156_250_000 {
		t.Fatalf("counter after 1s = %d, want 156250000", got)
	}
}

func TestFastAndSlowClocksDiverge(t *testing.T) {
	sch := sim.NewScheduler()
	rng := sim.NewRNG(1, "xo")
	fast := NewClock(sch, rng, Default10G(+100))
	slow := NewClock(sch, rng, Default10G(-100))
	sch.Run(sim.Second)
	diff := int64(fast.Counter()) - int64(slow.Counter())
	// ±100 ppm over 156.25e6 ticks = ±15625 each, 31250 total.
	if diff < 31200 || diff > 31300 {
		t.Fatalf("fast-slow divergence = %d ticks/s, want ~31250", diff)
	}
}

func TestCounterMonotonicAcrossQueries(t *testing.T) {
	sch, c := newTestClock(t, 37.5)
	prev := uint64(0)
	for i := 0; i < 10000; i++ {
		sch.RunFor(731 * sim.Picosecond)
		n := c.Counter()
		if n < prev {
			t.Fatalf("counter went backwards: %d -> %d", prev, n)
		}
		prev = n
	}
}

func TestTimeOfCountInvertsCounterAt(t *testing.T) {
	sch, c := newTestClock(t, -63.2)
	sch.Run(sim.Millisecond)
	for n := uint64(200_000); n < 200_100; n++ {
		at := c.TimeOfCount(n)
		if got := c.CounterAt(at); got < n {
			t.Fatalf("CounterAt(TimeOfCount(%d)) = %d, want >= %d", n, got, n)
		}
		if at > sim.Picosecond {
			if got := c.CounterAt(at - sim.Picosecond); got >= n {
				t.Fatalf("counter reached %d before TimeOfCount: %d", n, got)
			}
		}
	}
}

func TestSetCounterAtJumpsForward(t *testing.T) {
	sch, c := newTestClock(t, 0)
	sch.Run(sim.Microsecond)
	now := sch.Now()
	cur := c.CounterAt(now)
	c.SetCounterAt(cur+5, now)
	if got := c.CounterAt(now); got != cur+5 {
		t.Fatalf("after jump, counter = %d, want %d", got, cur+5)
	}
	// Tick phase must be preserved: counting rate continues unchanged.
	sch.Run(2 * sim.Microsecond)
	want := cur + 5 + uint64((sim.Microsecond)/sim.Time(6400)) // 6.4ns ticks over 1us
	got := c.Counter()
	if got < want-1 || got > want+1 {
		t.Fatalf("after jump + 1us, counter = %d, want ~%d", got, want)
	}
}

func TestSetCounterAtRejectsBackwards(t *testing.T) {
	sch, c := newTestClock(t, 0)
	sch.Run(sim.Microsecond)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards jump did not panic")
		}
	}()
	c.SetCounterAt(c.Counter()-1, sch.Now())
}

func TestAdjustPPMPreservesCount(t *testing.T) {
	sch, c := newTestClock(t, 0)
	sch.Run(sim.Millisecond)
	before := c.Counter()
	c.AdjustPPM(80)
	if got := c.Counter(); got != before {
		t.Fatalf("AdjustPPM changed current count %d -> %d", before, got)
	}
	if c.PPM() != 80 {
		t.Fatalf("PPM() = %v, want 80", c.PPM())
	}
	// New rate should apply going forward.
	start := c.Counter()
	sch.RunFor(sim.Second)
	delta := c.Counter() - start
	want := 156_250_000.0 * (1 + 80e-6)
	if math.Abs(float64(delta)-want) > 20 {
		t.Fatalf("ticks in 1s after AdjustPPM(80) = %d, want ~%.0f", delta, want)
	}
}

func TestPeriodWithinStandardBounds(t *testing.T) {
	for _, ppm := range []float64{-100, -50, 0, 50, 100} {
		_, c := newTestClock(t, ppm)
		p := c.PeriodFs()
		lo := int64(6_399_360) // 6.4ns * (1-1e-4)
		hi := int64(6_400_641) // 6.4ns / (1-1e-4), rounded up
		if p < lo || p > hi {
			t.Fatalf("period %d fs at %v ppm outside [%d, %d]", p, ppm, lo, hi)
		}
	}
}

func TestOutOfRangePPMPanics(t *testing.T) {
	sch := sim.NewScheduler()
	rng := sim.NewRNG(1, "xo")
	defer func() {
		if recover() == nil {
			t.Fatal("150 ppm did not panic")
		}
	}()
	NewClock(sch, rng, Default10G(150))
}

func TestWanderStaysBounded(t *testing.T) {
	sch := sim.NewScheduler()
	rng := sim.NewRNG(99, "xo-wander")
	c := NewClock(sch, rng, Params{
		NominalPeriodFs: NominalPeriod10GFs,
		OffsetPPM:       95,
		WanderInterval:  sim.Millisecond,
		WanderStepPPB:   5000, // extreme to force clamping
	})
	prev := c.Counter()
	for i := 0; i < 500; i++ {
		sch.RunFor(sim.Millisecond)
		if p := c.PPM(); p > MaxPPM || p < -MaxPPM {
			t.Fatalf("wander escaped bounds: %v ppm", p)
		}
		n := c.Counter()
		if n < prev {
			t.Fatalf("counter regressed during wander: %d -> %d", prev, n)
		}
		prev = n
	}
}

func TestWanderChangesFrequency(t *testing.T) {
	sch := sim.NewScheduler()
	rng := sim.NewRNG(7, "xo-wander2")
	c := NewClock(sch, rng, Params{
		NominalPeriodFs: NominalPeriod10GFs,
		WanderInterval:  sim.Millisecond,
		WanderStepPPB:   100,
	})
	sch.Run(100 * sim.Millisecond)
	if c.PPM() == 0 {
		t.Fatal("wander never moved the frequency")
	}
}

// Property: for any offset within range and any sequence of query times,
// CounterAt is nondecreasing and gains ticks at a rate within ±101 ppm of
// nominal over any window larger than one tick.
func TestCounterRateProperty(t *testing.T) {
	f := func(ppmScaled int16, steps []uint16) bool {
		ppm := float64(ppmScaled) / float64(1<<15) * 100 // in [-100, 100)
		sch := sim.NewScheduler()
		rng := sim.NewRNG(5, "prop")
		c := NewClock(sch, rng, Default10G(ppm))
		type sample struct {
			t sim.Time
			n uint64
		}
		var prev sample
		for _, s := range steps {
			sch.RunFor(sim.Time(s) * sim.Nanosecond)
			n := c.Counter()
			if n < prev.n {
				return false
			}
			prev = sample{sch.Now(), n}
		}
		if prev.t == 0 {
			return true
		}
		// Rate check over the full window.
		rate := float64(prev.n) / prev.t.Seconds()
		lo := 156.25e6 * (1 - 101e-6)
		hi := 156.25e6 * (1 + 101e-6)
		// Allow one tick of quantization slack at tiny windows.
		slack := 1.5 / prev.t.Seconds()
		return rate >= lo-slack && rate <= hi+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCounterAt(b *testing.B) {
	sch := sim.NewScheduler()
	rng := sim.NewRNG(1, "xo")
	c := NewClock(sch, rng, Default10G(12.5))
	sch.Run(sim.Second)
	t := sch.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.CounterAt(t)
	}
}
