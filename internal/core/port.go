package core

import (
	"fmt"

	"github.com/dtplab/dtp/internal/link"
	"github.com/dtplab/dtp/internal/phy"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
)

// portState tracks where a port is in Algorithm 1.
type portState int

const (
	portDown        portState = iota
	portInit                  // INIT sent, waiting for INIT-ACK
	portSynced                // one-way delay measured, beacons flowing
	portQuarantined           // hardened mode: peer failed admission, cooling down
)

func (s portState) String() string {
	switch s {
	case portDown:
		return "down"
	case portInit:
		return "init"
	case portSynced:
		return "synced"
	case portQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("portState(%d)", int(s))
	}
}

// Port is one DTP-enabled network port. It owns the outbound wire toward
// its peer, the Algorithm 1 state machine, and per-port failure handling.
//
// The fields are split into a hot block and a cold block. The hot block
// packs everything the steady-state beacon chain (beacon timer → TX
// pipeline → wire → RX pipeline → CDC crossing → process) reads or
// writes, contiguous at the head of the struct so the chain works out
// of the first couple of cache lines; the cold block carries INIT
// bookkeeping, watchdog, hardened-mode, and diagnostic state that only
// rare transitions touch. Field promotion keeps every access site
// unchanged.
type Port struct {
	portHot
	portCold
}

// portHot is the per-beacon working set.
type portHot struct {
	dev  *Device
	peer *Port
	wire *link.Wire // outbound direction
	rng  *sim.RNG
	gate TxGate
	// sched caches dev.net.Sch: the scheduler is consulted several
	// times per event and the two-level pointer chase shows up in
	// profiles at warehouse scale.
	sched *sim.Scheduler

	state portState
	// pd is the number of device clock ticks per port cycle: 1 in a
	// homogeneous network (the device clock IS the port clock), or the
	// port speed's Delta in a mixed-speed network whose devices run a
	// 0.32 ns base clock (§7). All PHY-timed arithmetic — insertion
	// slots, pipeline delays, beacon cadence, CDC alignment — works in
	// port cycles of pd device ticks.
	pd uint64
	// owdUnits is the one-way delay measured during INIT, in counter
	// units; -1 until measured.
	owdUnits int64
	// cdcFill is the synchronization-FIFO fill level latched when the
	// link came up: the "one random delay" of §2.5. Like a PCS elastic
	// buffer, the fill level is constant for the life of the link
	// session; only arrivals inside the metastability band dither.
	cdcFill int
	// fragmented selects the 1 GbE fragment encoding for this port.
	fragmented bool
	// uplink marks the port leading toward the master in §5.4 mode; only
	// uplink ports adjust the device counter then.
	uplink bool
	// faulty marks the peer as failed per §3.2 sliding-window detection.
	faulty bool
	// lastRx is the arrival time of the last message processed from the
	// peer (any type); the beacon-loss watchdog reads it.
	lastRx simTime

	beaconEvent sim.Event
	beaconsSent uint64

	// Beacon stats (hot: bumped per received beacon).
	beaconsReceived uint64
	beaconsIgnored  uint64
	jumps           uint64
}

// portCold is everything only bring-up, teardown, hardening, and
// diagnostics touch.
type portCold struct {
	idx int
	// sessionMinOwd is the smallest OWD any INIT round of this link
	// session measured (-1 before the first). A watchdog demote re-runs
	// INIT without a link bounce, so the CDC fill — and with it the
	// deterministic transit floor — is unchanged; but a short probe
	// burst can land entirely in the +1 region of the slow CDC beat and
	// come back one unit high. Re-measurements are therefore clamped to
	// the session minimum: overestimating the OWD ratchets the whole
	// network's counter (§3.3), while underestimating it merely costs
	// precision and is recovered at the next real link bounce.
	sessionMinOwd int64
	// initOutstanding maps the masked counter value embedded in each
	// in-flight INIT to its full value, so ACK echoes can be paired.
	initOutstanding map[uint64]uint64
	// initRTTs collects the RTT samples of this INIT round; the final
	// OWD uses the minimum, which carries the least CDC noise.
	initRTTs  []int64
	initEvent sim.Event // retry timer
	// initBackoff is the consecutive-empty-round count; the INIT retry
	// timeout doubles with it (capped) so a flapping or dead peer cannot
	// spin the state machine at full probe rate forever.
	initBackoff uint

	// watchEvent fires periodically while SYNCED and demotes the port
	// back to INIT when the peer has been silent (lastRx) for
	// BeaconTimeoutIntervals beacon intervals, or when a faulty mark has
	// outlived FaultyCooldownTicks.
	watchEvent sim.Event

	// Received-MSB state for reconstructing full 106-bit counters.
	peerMsb     uint64
	havePeerMsb bool
	pendingJoin *uint64 // JOIN that arrived before our OWD was measured

	// asm reassembles 1 GbE message fragments (nil until first use).
	asm *phy.Assembler

	// Failure handling (§3.2): guard violations within a sliding window
	// mark the peer faulty (the faulty flag itself is hot state).
	faultyAt        simTime // when the faulty mark was set
	violationCount  int
	violationWindow uint64 // tick at which the current window started

	// Hardened-mode state (see harden.go). admitValid marks the session
	// past its first admitted message (whose forward lead the quorum
	// combiner vets); pullWindow/pulledUnits budget how far this peer
	// has pulled the counter forward per sliding window of the
	// free-running tick clock; lastTarget/lastTargetLocal hold the most
	// recent admitted observation — this port's quorum vote.
	admitValid      bool
	pullWindow      uint64 // free-running tick at which the pull window started
	pulledUnits     int64  // forward pull admitted within the current window
	lastTarget      uint64
	lastTargetLocal uint64
	haveTarget      bool
	rejectCount     int
	rejectWindow    uint64    // tick at which the rejection window started
	quarEvent       sim.Event // quarantine cooldown timer

	// Stats.
	droppedDown uint64 // blocks that arrived while the port was down

	// tname is the precomputed Name() used in trace events, set by
	// Network.Instrument so the hot path never formats strings.
	tname string
}

// Name identifies the port for diagnostics, e.g. "s1[2]".
func (p *Port) Name() string { return fmt.Sprintf("%s[%d]", p.dev.Name(), p.idx) }

// PairName identifies the link direction receiver-sender, matching the
// paper's figure labels (offsets measured at this port about its peer).
func (p *Port) PairName() string { return p.dev.Name() + "-" + p.peer.dev.Name() }

// Device returns the port's owning device.
func (p *Port) Device() *Device { return p.dev }

// Peer returns the port at the far end of the cable.
func (p *Port) Peer() *Port { return p.peer }

// OWDUnits returns the one-way delay measured during INIT, in counter
// units, or -1 if not yet measured.
func (p *Port) OWDUnits() int64 { return p.owdUnits }

// State exposes the protocol state (for tests and monitoring).
func (p *Port) State() string { return p.state.String() }

// Faulty reports whether this port has declared its peer faulty and
// stopped synchronizing to it.
func (p *Port) Faulty() bool { return p.faulty }

// Stats returns beacon counters: sent, received, ignored (guard or
// parity violations), and counter jumps caused by this port.
func (p *Port) Stats() (sent, received, ignored, jumps uint64) {
	return p.beaconsSent, p.beaconsReceived, p.beaconsIgnored, p.jumps
}

// SetGate replaces the port's transmit gate (traffic model).
func (p *Port) SetGate(g TxGate) { p.gate = g }

// --- Link bring-up ---------------------------------------------------

// Up starts Algorithm 1 on this port: transition T0, "after the link is
// established with p". Both ends must be brought up for the handshake to
// complete; each direction measures its own delay.
func (p *Port) Up() {
	if p.state != portDown {
		return
	}
	tel := &p.dev.net.tel
	tel.portsUp.Add(1)
	tel.tr.Record(p.sch().Now(), telemetry.KindLinkUp, p.tname, 0, 0, "")
	p.setState(portInit)
	p.faulty = false
	p.violationCount = 0
	p.initBackoff = 0
	p.sessionMinOwd = -1
	p.resetAdmission()
	p.rejectCount = 0
	if max := p.cfg().CDCMaxExtraTicks; max > 0 {
		p.cdcFill = p.rng.IntN(max + 1)
	}
	p.sendInit()
}

// Down tears the port down (cable pull, peer power-off). Pending beacons
// stop; counters keep running on both sides.
func (p *Port) Down() {
	if p.state != portDown {
		tel := &p.dev.net.tel
		tel.portsUp.Add(-1)
		tel.tr.Record(p.sch().Now(), telemetry.KindLinkDown, p.tname, 0, 0, "")
	}
	p.setState(portDown)
	p.owdUnits = -1
	p.havePeerMsb = false
	p.pendingJoin = nil
	p.asm = nil
	p.beaconEvent.Cancel()
	p.initEvent.Cancel()
	p.watchEvent.Cancel()
	p.quarEvent.Cancel()
	p.resetAdmission()
}

// --- Pooled event dispatch --------------------------------------------

// Port actor opcodes: the steady-state beacon chain (beacon timer → TX
// pipeline → wire → RX pipeline → CDC crossing → process) runs entirely
// on pooled scheduler events — no closure allocations — with the block
// or message carried in the two event arguments.
const (
	evBeacon   uint8 = iota // a = port-cycle slot the beacon fired at
	evTxBlock               // a = block payload, b = sync byte: TX pipeline done, launch onto the wire
	evRxArrive              // a = block payload, b = sync byte: leading edge reached this port
	evCdc                   // a = block payload, b = sync byte: RX pipeline done, cross clock domains
	evProcess               // a = message payload, b = message type: aligned to a local tick
	evWatchdog              // a = silence threshold (sim.Time): beacon-loss sweep
)

// OnEvent implements sim.Actor.
func (p *Port) OnEvent(code uint8, a, b uint64) {
	switch code {
	case evBeacon:
		if p.state != portSynced {
			return
		}
		p.sendBeacon()
		p.scheduleBeacons(a)
	case evTxBlock:
		p.wire.SendBlockActor(phy.Block{Sync: byte(b), Payload: a}, p.peer, evRxArrive)
	case evRxArrive:
		p.onWireArrival(phy.Block{Sync: byte(b), Payload: a})
	case evCdc:
		p.cdcCross(phy.Block{Sync: byte(b), Payload: a})
	case evProcess:
		p.process(phy.Message{Type: phy.MsgType(b), Payload: a})
	case evWatchdog:
		p.watchdogSweep(simTime(a))
	}
}

// initSamples is how many INIT/INIT-ACK exchanges one delay measurement
// round performs; the minimum RTT is used (T2). Sampling the minimum
// strips the nondeterministic CDC additions, leaving the deterministic
// transit the §3.3 analysis calls d.
const initSamples = 8

func (p *Port) sendInit() {
	tel := &p.dev.net.tel
	tel.initRounds.Inc()
	tel.tr.Record(p.sch().Now(), telemetry.KindInitRound, p.tname, int64(len(p.initRTTs)), 0, "")
	p.initOutstanding = map[uint64]uint64{}
	p.initRTTs = p.initRTTs[:0]
	mask := p.codec().CounterMask()
	for i := 0; i < initSamples; i++ {
		// Space the probes so each sees an independent CDC phase; the
		// counter is read at the insertion tick, not at scheduling
		// time, since the RTT is relative to the embedded value.
		p.transmitNow(1+i*137, phy.MsgInit, func() uint64 {
			full := p.dev.gc.at(p.sch().Now())
			p.initOutstanding[full&mask] = full
			return full
		})
	}
	// Retry if INITs or ACKs are lost — to bit errors, or because the
	// peer had not come up yet. The base timeout is generous relative to
	// any plausible RTT (20k ticks ≈ 128 µs at 10 GbE); consecutive
	// rounds with zero replies double it, bounded, so a dead or
	// partitioned peer costs ever fewer probes instead of a full-rate
	// spin. The backoff resets the moment the peer shows life (an INIT
	// from it, a completed measurement, or a fresh link-up).
	retry := p.dev.tickDur(initRetryTicks << p.initBackoff)
	p.initEvent = p.sch().After(retry, func() {
		if p.state != portInit {
			return
		}
		if len(p.initRTTs) > 0 {
			p.finishInit() // partial round: use what arrived
			return
		}
		if p.initBackoff < maxInitBackoff {
			p.initBackoff++
		}
		p.sendInit()
	})
}

// initRetryTicks is the base INIT-round retry timeout; maxInitBackoff
// caps the exponential backoff at initRetryTicks<<maxInitBackoff
// (640k ticks ≈ 4.1 ms at 10 GbE).
const (
	initRetryTicks = 20_000
	maxInitBackoff = 5
)

// --- Transmit path ----------------------------------------------------

// transmitNow inserts a message into the next idle block at least
// `after` port cycles ahead, then models the deterministic TX pipeline
// and the wire. The payload is evaluated at the insertion instant so
// embedded counters are exact even when the transmit gate delays the
// slot. The current block is already committed to the wire, so the
// earliest insertion opportunity is one cycle out.
func (p *Port) transmitNow(after int, t phy.MsgType, payload func() uint64) {
	if after < 1 {
		after = 1
	}
	cycle := p.nextCycleTick(p.dev.clock.Counter()+1)/p.pd + uint64(after-1)
	slot := p.gate.NextSlot(cycle)
	at := p.dev.clock.TimeOfCount(slot * p.pd)
	p.sch().At(at, func() { p.insert(t, payload()) })
}

// insert composes the message with the counter value as of the insertion
// tick (the DTP sublayer and the counter share a clock domain, so the
// embedded value is exact, §4.2) and sends it down the TX pipeline. At
// 1 GbE the message leaves as four back-to-back ordered-set fragments.
func (p *Port) insert(t phy.MsgType, payload uint64) {
	if p.state == portDown {
		return // slot fired after the port was torn down
	}
	codec := p.codec()
	m := phy.Message{Type: t, Payload: payload & codec.CounterMask()}
	txDelay := p.cycleDur(p.cfg().TxPipelineTicks)
	if !p.fragmented {
		b := codec.EmbedMessage(m)
		p.sch().AfterActor(txDelay, p, evTxBlock, b.Payload, uint64(b.Sync))
		return
	}
	for i, f := range phy.FragmentMessage(codec, m) {
		b := phy.EmbedFragment(f)
		d := txDelay + p.cycleDur(i) // consecutive line cycles
		p.sch().AfterActor(d, p, evTxBlock, b.Payload, uint64(b.Sync))
	}
}

// sendBeacon implements T3: transmit (BEACON, gc). Every
// MsbEveryBeacons-th message instead carries the counter's upper bits.
func (p *Port) sendBeacon() {
	now := p.sch().Now()
	gc := p.dev.gc.at(now) + p.dev.lieUnits
	p.beaconsSent++
	tel := &p.dev.net.tel
	tel.sentN++
	if tel.tr.Enabled(telemetry.KindBeaconTx) {
		tel.tr.Record(now, telemetry.KindBeaconTx, p.tname, int64(gc), 0, "")
	}
	cfg := p.cfg()
	if cfg.MsbEveryBeacons > 0 && p.beaconsSent%uint64(cfg.MsbEveryBeacons) == 0 {
		p.insert(phy.MsgBeaconMSB, gc>>p.counterBits())
		return
	}
	p.insert(phy.MsgBeacon, gc)
}

// sendJoinPair transmits BEACON-MSB followed by BEACON-JOIN so the peer
// can reconstruct the full counter and make an arbitrarily large
// adjustment (§3.2 "Network dynamics").
func (p *Port) sendJoinPair() {
	if p.state != portSynced {
		return
	}
	cycle := p.nextCycleTick(p.dev.clock.Counter()+1) / p.pd
	slot1 := p.gate.NextSlot(cycle)
	slot2 := p.gate.NextSlot(slot1 + 1)
	p.sch().At(p.dev.clock.TimeOfCount(slot1*p.pd), func() {
		p.insert(phy.MsgBeaconMSB, (p.dev.GlobalCounter()+p.dev.lieUnits)>>p.counterBits())
	})
	p.sch().At(p.dev.clock.TimeOfCount(slot2*p.pd), func() {
		p.insert(phy.MsgBeaconJoin, p.dev.GlobalCounter()+p.dev.lieUnits)
	})
}

// scheduleBeacons arranges T3 to fire every BeaconIntervalTicks port
// cycles of the local oscillator, delayed to the next idle block under
// load. fromCycle is a port-cycle index.
func (p *Port) scheduleBeacons(fromCycle uint64) {
	cfg := p.cfg()
	next := fromCycle + cfg.BeaconIntervalTicks
	slot := p.gate.NextSlot(next)
	p.beaconEvent = p.sch().AtActor(p.dev.clock.TimeOfCount(slot*p.pd), p, evBeacon, slot, 0)
}

// --- Receive path -----------------------------------------------------

// onWireArrival fires when the leading edge of a block reaches this
// port. The RX PCS pipeline runs in the recovered clock domain (the
// sender's frequency); the message then crosses into the local clock
// domain through a synchronization FIFO that aligns it to the next local
// tick plus 0..CDCMaxExtraTicks random whole ticks — the only
// nondeterminism on an otherwise idle link (§2.5).
func (p *Port) onWireArrival(b phy.Block) {
	if p.state == portDown {
		p.dropDown()
		return
	}
	// The RX pipeline runs in the recovered clock domain: the sender's
	// port-cycle rate.
	rxDelay := p.peer.cycleDur(p.cfg().RxPipelineTicks)
	p.sch().AfterActor(rxDelay, p, evCdc, b.Payload, uint64(b.Sync))
}

func (p *Port) cdcCross(b phy.Block) {
	if p.state == portDown {
		p.dropDown()
		return
	}
	if !b.Valid() {
		return // sync header corrupted: block discarded by block sync
	}
	var m phy.Message
	var ok bool
	if p.fragmented {
		// 1 GbE: reassemble ordered-set fragments in the RX domain; a
		// complete in-order message crosses the FIFO as a unit.
		frag, fok := phy.ExtractFragment(b)
		if !fok {
			return
		}
		if p.asm == nil {
			p.asm = phy.NewAssembler(p.codec())
		}
		m, ok = p.asm.Push(frag)
	} else {
		_, m, ok = p.codec().ExtractMessage(b)
	}
	if !ok {
		return // plain idle, partial message, undefined type, or parity failure
	}
	now := p.sch().Now()
	tick := p.nextCycleTick(p.dev.clock.CounterAt(now)+1) + uint64(p.cdcExtraCycles(now))*p.pd
	p.sch().AtActor(p.dev.clock.TimeOfCount(tick), p, evProcess, m.Payload, uint64(m.Type))
}

// cdcExtraTicks models the synchronization FIFO between the recovered
// and local clock domains. Its base delay is the fill level latched at
// link-up (constant for the session, like a PCS elastic buffer — this
// is the "one random delay" of §2.5 that the INIT measurement absorbs
// into the measured OWD). On top of that, data landing inside the setup
// window just before the capturing edge takes one extra cycle, with
// true randomness only inside a narrow metastability band.
func (p *Port) cdcExtraCycles(now simTime) int {
	cfg := p.cfg()
	if cfg.CDCMaxExtraTicks <= 0 {
		return 0
	}
	clk := p.dev.clock
	nextEdge := clk.TimeOfCount(p.nextCycleTick(clk.CounterAt(now) + 1))
	residFs := (nextEdge - now).Fs()
	setupFs := int64(cfg.CDCSetupFraction * float64(clk.PeriodFs()) * float64(p.pd))
	extra := 0
	switch {
	case residFs < setupFs-cfg.CDCJitterFs:
		extra = 1
	case residFs < setupFs+cfg.CDCJitterFs:
		extra = p.rng.IntN(2) // metastable: either outcome
	}
	return p.cdcFill + extra
}

// process handles a message in the local clock domain.
func (p *Port) process(m phy.Message) {
	if p.state == portDown {
		p.dropDown()
		return
	}
	if p.state == portQuarantined {
		// A quarantined port trusts nothing from its peer — not even an
		// INIT, which would let a Byzantine peer re-arm a session before
		// the cooldown's re-INIT escape hatch runs.
		return
	}
	p.lastRx = p.sch().Now()
	switch m.Type {
	case phy.MsgInit:
		// T1: reply with INIT-ACK echoing the sender's counter. The
		// reply turnaround is a deterministic pipeline constant: the
		// ACK enters the TX path two cycles after the INIT is
		// processed. Together with α = 3 this biases the measured OWD
		// to transit-1..transit, the regime the §3.3 analysis assumes.
		echo := m.Payload
		p.transmitNow(p.cfg().AckTurnaroundTicks, phy.MsgInitAck, func() uint64 { return echo })
		// A peer that probes us while we are backed off has just come
		// back: drop the backoff and start a fresh full-rate round now
		// instead of waiting out an inflated retry timer. Loop-safe —
		// the re-kick only fires when this side was actually backed off,
		// and it resets the backoff first.
		if p.state == portInit && p.initBackoff > 0 {
			p.initBackoff = 0
			p.initEvent.Cancel()
			p.sendInit()
		}
	case phy.MsgInitAck:
		p.handleInitAck(m.Payload)
	case phy.MsgBeacon:
		p.handleBeacon(m.Payload)
	case phy.MsgBeaconMSB:
		p.peerMsb = m.Payload
		p.havePeerMsb = true
	case phy.MsgBeaconJoin:
		p.handleJoin(m.Payload)
	}
}

// handleInitAck collects one RTT sample; the round finishes when all
// probes are answered (T2: d ← (min lc − c − α)/2).
func (p *Port) handleInitAck(echo uint64) {
	if p.state != portInit {
		return
	}
	sent, ok := p.initOutstanding[echo]
	if !ok {
		return // stale or corrupted ACK
	}
	delete(p.initOutstanding, echo)
	now := p.sch().Now()
	lc := p.dev.gc.at(now)
	rtt := int64(lc - sent)
	cfg := p.cfg()
	// A counter jump between INIT and ACK (e.g. a racing BEACON-JOIN)
	// inflates the apparent RTT; drop the poisoned sample.
	limit := int64(cfg.BeaconIntervalTicks*40+20_000) * int64(cfg.UnitsPerTick) * int64(p.pd)
	if rtt >= 0 && rtt < limit {
		p.initRTTs = append(p.initRTTs, rtt)
	}
	if len(p.initRTTs) >= initSamples {
		p.finishInit()
	}
}

// finishInit derives the one-way delay from the collected RTT samples
// and starts the BEACON phase.
func (p *Port) finishInit() {
	if p.state != portInit || len(p.initRTTs) == 0 {
		return
	}
	cfg := p.cfg()
	min := p.initRTTs[0]
	for _, r := range p.initRTTs[1:] {
		if r < min {
			min = r
		}
	}
	// α scales with the port cycle: it compensates CDC cycles, which
	// cost pd units each at this port's speed.
	d := (min - cfg.AlphaUnits*int64(p.pd)) / 2
	if d < 0 {
		d = 0
	}
	if p.sessionMinOwd >= 0 && p.sessionMinOwd < d {
		d = p.sessionMinOwd // same link session: trust only the floor
	}
	p.sessionMinOwd = d
	p.owdUnits = d
	p.setState(portSynced)
	p.initBackoff = 0
	p.resetAdmission() // fresh session, fresh baseline
	tel := &p.dev.net.tel
	tel.owd.Observe(float64(d))
	tel.tr.Record(p.sch().Now(), telemetry.KindSynced, p.tname, d, int64(len(p.initRTTs)), "")
	p.initEvent.Cancel()
	// A JOIN that raced ahead of our delay measurement can now apply —
	// in hardened mode through the same session-initial admission as
	// any other JOIN, or the race would be a bypass.
	if p.pendingJoin != nil {
		target := *p.pendingJoin + uint64(d)
		p.pendingJoin = nil
		local := p.dev.GlobalCounter()
		if !cfg.Hardened || p.admitTarget(target, local, true) {
			if cfg.Hardened {
				p.noteTarget(target, local)
			}
			p.dev.jump(target, p, true)
		}
		if p.state != portSynced {
			return // the rejected JOIN tripped quarantine
		}
	}
	// Announce our counter for max-agreement, then start beacons and
	// the beacon-loss watchdog.
	p.sch().After(p.cycleDur(int(cfg.JoinDelayTicks)), p.sendJoinPair)
	p.scheduleBeacons(p.dev.clock.Counter() / p.pd)
	p.lastRx = p.sch().Now()
	p.scheduleWatchdog()
}

// handleBeacon implements T4: lc ← max(lc, c + d), with the paper's
// bit-error guard and faulty-peer detection.
func (p *Port) handleBeacon(lsb uint64) {
	if p.state != portSynced || p.owdUnits < 0 {
		return
	}
	now := p.sch().Now()
	local := p.dev.gc.at(now)
	c := reconstructNear(local, lsb, p.counterBits())
	target := c + uint64(p.owdUnits)
	p.beaconsReceived++

	offset := int64(local) - int64(target) // == t2 - t1 - OWD (§6.2)

	tel := &p.dev.net.tel
	tel.rxN++
	if p.faulty {
		p.beaconsIgnored++
		tel.ignoredN++
		return
	}
	cfg := p.cfg()
	if guard := cfg.GuardUnits * int64(p.pd); offset < -guard || offset > guard {
		// Counter off by more than the guard: treat as bit error.
		p.beaconsIgnored++
		tel.ignoredN++
		if tel.tr.Enabled(telemetry.KindBeaconIgnored) {
			tel.tr.Record(now, telemetry.KindBeaconIgnored, p.tname, offset, 0, "")
		}
		p.recordViolation()
		return
	}
	if cfg.Hardened {
		// Bounded-jump admission: a beacon that passes the guard can
		// still ratchet the fabric a few units at a time; the windowed
		// pull budget caps what this peer may drag the counter forward.
		if !p.admitTarget(target, local, false) {
			p.beaconsIgnored++
			tel.ignoredN++
			return
		}
		p.noteTarget(target, local)
	}
	tel.offBatch.Observe(float64(offset))
	if tel.tr.Enabled(telemetry.KindBeaconRx) {
		tel.tr.Record(now, telemetry.KindBeaconRx, p.tname, offset, 0, "")
	}
	if cfg.FollowMaster {
		// §5.4: only the uplink disciplines the counter; it follows the
		// parent in both directions — forward by jumping, backward (a
		// faster local oscillator) by stalling until the parent catches
		// up. Non-uplink ports still observe offsets.
		if p.uplink {
			switch {
			case target > local:
				p.jumps++
				p.dev.jump(target, p, false)
			case target < local:
				p.dev.stall(local-target, now)
			}
		}
	} else if target > local {
		p.jumps++
		p.dev.jump(target, p, false)
	}
	if p.dev.net.OnOffset != nil {
		p.dev.net.OnOffset(p, offset)
	}
}

// handleJoin applies a BEACON-JOIN: a forward adjustment to the agreed
// maximum counter — unguarded in plain DTP, which makes it the prime
// Byzantine attack surface; hardened mode routes it through the same
// bounded-jump admission as beacons.
func (p *Port) handleJoin(lsb uint64) {
	bits := p.counterBits()
	var full uint64
	if p.havePeerMsb {
		full = p.peerMsb<<bits | lsb
	} else {
		full = reconstructNear(p.dev.GlobalCounter(), lsb, bits)
	}
	if p.owdUnits < 0 {
		p.pendingJoin = &full
		return
	}
	target := full + uint64(p.owdUnits)
	local := p.dev.GlobalCounter()
	if p.cfg().Hardened {
		if !p.admitTarget(target, local, true) {
			return
		}
		p.noteTarget(target, local)
	}
	if target > local {
		p.jumps++
		p.dev.jump(target, p, true)
	}
}

// recordViolation counts guard violations in a sliding window; too many
// mark the peer faulty (§3.2 "Handling failures").
func (p *Port) recordViolation() {
	cfg := p.cfg()
	tick := p.dev.clock.Counter()
	if tick-p.violationWindow > cfg.FaultyWindowTicks {
		p.violationWindow = tick
		p.violationCount = 0
	}
	p.violationCount++
	tel := &p.dev.net.tel
	tel.violations.Inc()
	if cfg.FaultyJumpLimit > 0 && p.violationCount > cfg.FaultyJumpLimit {
		if !p.faulty {
			tel.faultyPorts.Inc()
			tel.tr.Record(p.sch().Now(), telemetry.KindFaultyPeer, p.tname,
				int64(p.violationCount), 0, "")
			p.faultyAt = p.sch().Now()
		}
		p.faulty = true
	}
}

// --- Beacon-loss watchdog (hardening beyond the paper) ----------------

// Demotion reasons carried in KindPortDemoted trace events.
const (
	demoteBeaconLoss     = 0 // peer silent for BeaconTimeoutIntervals
	demoteFaultyCooldown = 1 // faulty mark outlived FaultyCooldownTicks
	demoteQuarantine     = 2 // quarantine cooldown expired: re-INIT escape hatch
)

// scheduleWatchdog arms the beacon-loss watchdog: while SYNCED, the port
// checks every BeaconTimeoutIntervals beacon intervals that the peer has
// said *something*. A peer that is nominally up but silent — a grey
// failure the link layer never reports — would otherwise leave this port
// free-running in SYNCED forever, consuming drift with no resync. The
// same sweep retires stale faulty marks when FaultyCooldownTicks is set.
func (p *Port) scheduleWatchdog() {
	cfg := p.cfg()
	if cfg.BeaconTimeoutIntervals <= 0 {
		return
	}
	p.watchEvent.Cancel()
	period := p.cycleDur(int(cfg.BeaconIntervalTicks) * cfg.BeaconTimeoutIntervals)
	// The silence threshold rides in the event payload: it must be the
	// period as computed when the sweep was armed, not re-derived at
	// fire time from a possibly-wandered oscillator rate.
	p.watchEvent = p.sch().AfterActor(period, p, evWatchdog, uint64(period), 0)
}

// watchdogSweep is the evWatchdog body: demote on peer silence or a
// stale faulty mark, otherwise re-arm.
func (p *Port) watchdogSweep(period simTime) {
	if p.state != portSynced {
		return
	}
	cfg := p.cfg()
	now := p.sch().Now()
	if now-p.lastRx >= period {
		p.demote(demoteBeaconLoss)
		return
	}
	if p.faulty && cfg.FaultyCooldownTicks > 0 &&
		now-p.faultyAt >= p.dev.tickDur(int(cfg.FaultyCooldownTicks)) {
		p.demote(demoteFaultyCooldown)
		return
	}
	p.scheduleWatchdog()
}

// demote drops a SYNCED port back to INIT and re-runs the delay
// measurement, clearing all per-session protocol state (the measured OWD
// is stale by definition — the peer went away or was declared faulty).
// Unlike Down, the port stays administratively up, so the re-INIT starts
// immediately.
func (p *Port) demote(reason int64) {
	if p.state != portSynced {
		return
	}
	tel := &p.dev.net.tel
	tel.demotions.Inc()
	tel.tr.Record(p.sch().Now(), telemetry.KindPortDemoted, p.tname, reason, p.owdUnits, "")
	p.setState(portInit)
	p.owdUnits = -1
	p.havePeerMsb = false
	p.pendingJoin = nil
	p.asm = nil
	p.faulty = false
	p.violationCount = 0
	p.initBackoff = 0
	p.resetAdmission()
	p.beaconEvent.Cancel()
	p.watchEvent.Cancel()
	p.initEvent.Cancel()
	p.sendInit()
}

// dropDown accounts for a block that reached a down port: the peer is
// still transmitting into a dead interface, a mismatch worth surfacing
// (dtp_port_dropped_down_total) because it distinguishes one-sided
// teardown from clean link death.
func (p *Port) dropDown() {
	p.droppedDown++
	p.dev.net.tel.droppedDownN++
}

// DroppedDown returns how many blocks arrived while the port was down.
func (p *Port) DroppedDown() uint64 { return p.droppedDown }

// --- Helpers ----------------------------------------------------------

func (p *Port) sch() *sim.Scheduler { return p.sched }
func (p *Port) cfg() *Config        { return &p.dev.net.cfg }
func (p *Port) codec() phy.Codec    { return p.dev.net.codec }

// nextCycleTick returns the smallest port-cycle boundary (device tick
// that is a multiple of pd) at or after `from`.
func (p *Port) nextCycleTick(from uint64) uint64 {
	return (from + p.pd - 1) / p.pd * p.pd
}

// cycleDur returns the duration of n of this port's cycles at the
// device oscillator's current rate.
func (p *Port) cycleDur(n int) simTime {
	return sim.Femto(int64(n) * int64(p.pd) * p.dev.clock.PeriodFs())
}

// counterBits is the number of counter LSBs a message payload carries.
func (p *Port) counterBits() uint {
	if p.cfg().Parity {
		return phy.PayloadBits - 1
	}
	return phy.PayloadBits
}
