package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestStripedBucketIndex(t *testing.T) {
	h := NewStripedHistogram(1000, 8, 1)
	cases := []struct {
		v    float64
		want int
	}{
		{-5, 0}, {0, 0}, {math.NaN(), 0},
		{1, 0}, {1000, 0},
		{1001, 1}, {2000, 1},
		{2001, 2}, {4000, 2},
		{4001, 3},
		{1000 * 128, 7},              // top finite bucket (unit·2^7)
		{1000*128 + 1, 8}, {1e18, 8}, // overflow
	}
	for _, c := range cases {
		if got := h.index(c.v); got != c.want {
			t.Errorf("index(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestStripedObserveAndSnapshot(t *testing.T) {
	h := NewStripedHistogram(10, 8, 4)
	w := h.Writer()
	for i := 1; i <= 1000; i++ {
		w.Observe(float64(i))
	}
	w.Flush()
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if want := 1000.0 * 1001 / 2; s.Sum != want {
		t.Fatalf("sum = %g, want %g", s.Sum, want)
	}
	var total uint64
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
	// Median of 1..1000 should land around 500 (bucket resolution).
	if q := s.Quantile(0.5); q < 320 || q > 700 {
		t.Fatalf("p50 = %g, want ~500 within bucket resolution", q)
	}
	if m := s.Mean(); math.Abs(m-500.5) > 1e-9 {
		t.Fatalf("mean = %g, want 500.5", m)
	}
}

// TestStripedConcurrent hammers one histogram from many writers while a
// scraper reads Snapshot and the Prometheus exposition concurrently.
// Under -race this proves the no-torn-reads claim; the final merged
// totals prove no observation is lost.
func TestStripedConcurrent(t *testing.T) {
	const writers = 8
	const perWriter = 10000
	h := NewStripedHistogram(1, 16, writers)

	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var total uint64
			for _, n := range s.Buckets {
				total += n
			}
			if total != s.Count {
				// Bucket/count skew within one unflushed batch per
				// writer is allowed; torn words are not. Both totals
				// are sums of atomic loads, so a mismatch here can only
				// be flush-in-progress skew — bounded by the writers'
				// batch size.
				if diff := int64(total) - int64(s.Count); diff > writers*defaultFlushEvery || diff < -writers*defaultFlushEvery {
					t.Errorf("snapshot skew %d exceeds one batch per writer", diff)
					return
				}
			}
			var b strings.Builder
			h.writeExposition(&b, "x", "")
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := h.Writer()
			for j := 0; j < perWriter; j++ {
				w.Observe(float64(i*perWriter + j))
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	close(stop)
	scraper.Wait()

	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", s.Count, writers*perWriter)
	}
	n := float64(writers * perWriter)
	if want := n * (n - 1) / 2; math.Abs(s.Sum-want) > want*1e-9 {
		t.Fatalf("sum = %g, want %g", s.Sum, want)
	}
}

// TestStripeWriterAllocs pins the zero-allocation claim on the record
// path — the property that lets the timesvc fast path carry a writer.
func TestStripeWriterAllocs(t *testing.T) {
	h := NewStripedHistogram(1000, 24, 2)
	w := h.Writer()
	v := 0.0
	allocs := testing.AllocsPerRun(10000, func() {
		v += 17
		w.Observe(v)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f times per call, want 0", allocs)
	}
}

func TestStripedNilSafety(t *testing.T) {
	var h *StripedHistogram
	w := h.Writer()
	w.Observe(1)
	w.Flush()
	h.FlushAll()
	if h.Count() != 0 {
		t.Fatal("nil histogram should count 0")
	}
	s := h.Snapshot()
	if s.Count != 0 || len(s.Buckets) != 0 {
		t.Fatal("nil histogram snapshot should be empty")
	}
	var r *Registry
	if r.StripedHistogram("x", "", 1, 8, 1) != nil {
		t.Fatal("nil registry should return nil histogram")
	}
}

func TestStripedRegistryExposition(t *testing.T) {
	r := New()
	h := r.StripedHistogram("dtp_test_eps_ps", "help", 1000, 4, 2, "host", "s4")
	w := h.Writer()
	w.Observe(500)
	w.Observe(1500)
	w.Observe(1e9) // overflow
	w.Flush()
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`dtp_test_eps_ps_bucket{host="s4",le="1000"} 1`,
		`dtp_test_eps_ps_bucket{host="s4",le="2000"} 2`,
		`dtp_test_eps_ps_bucket{host="s4",le="+Inf"} 3`,
		`dtp_test_eps_ps_count{host="s4"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Re-registration returns the same series.
	if r.StripedHistogram("dtp_test_eps_ps", "help", 1000, 4, 2, "host", "s4") != h {
		t.Fatal("re-registration should return the same histogram")
	}
}
