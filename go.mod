module github.com/dtplab/dtp

go 1.22
