package campaign

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/dtplab/dtp"
	"github.com/dtplab/dtp/internal/par"
	"github.com/dtplab/dtp/internal/stats"
	"github.com/dtplab/dtp/internal/topo"
)

// Options control campaign execution. They affect scheduling only —
// never the per-run measurements — so any Jobs value produces the same
// Results.
type Options struct {
	// Jobs is the worker-pool width (<= 0 selects GOMAXPROCS).
	Jobs int
	// OnResult, when set, is called once per run in grid order (an
	// ordered reassembly buffer holds completed runs until their turn),
	// e.g. to stream JSONL while the campaign executes.
	OnResult func(*Result)
}

// Report is a completed campaign: the expanded grid, per-run Results in
// grid order, and the deterministic aggregate. Wall and Jobs are the
// host-dependent execution record, kept out of all JSON output.
type Report struct {
	Grid      Grid
	Points    []Point
	Results   []Result
	Aggregate Aggregate
	Jobs      int
	Wall      time.Duration
}

// OK reports whether every run passed.
func (rep *Report) OK() bool {
	return rep.Aggregate.Failed == 0
}

// Run expands the grid and executes every point across the worker
// pool. Per-run failures land in their Result's Err field rather than
// aborting the campaign; the returned error is reserved for grid
// validation problems.
func Run(g Grid, opts Options) (*Report, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g = g.withDefaults()
	points := g.Expand()
	jobs := par.Jobs(opts.Jobs)

	start := time.Now()
	results := make([]Result, len(points))
	var emit func(i int)
	if opts.OnResult != nil {
		emit = orderedEmitter(results, opts.OnResult)
	}
	// Map's worker indices arrive in any order; results land by index,
	// so the merge is in grid order no matter how execution interleaves.
	_, _ = par.Map(jobs, len(points), func(i int) (struct{}, error) {
		results[i] = RunPoint(g, points[i])
		if emit != nil {
			emit(i)
		}
		return struct{}{}, nil
	})
	rep := &Report{
		Grid: g, Points: points, Results: results,
		Aggregate: Aggregated(g.Name, results),
		Jobs:      jobs, Wall: time.Since(start),
	}
	return rep, nil
}

// orderedEmitter returns a completion hook that releases results to fn
// strictly in grid order: run i is held until runs 0..i-1 have been
// emitted. Safe for concurrent callers.
func orderedEmitter(results []Result, fn func(*Result)) func(i int) {
	var mu sync.Mutex
	done := make([]bool, len(results))
	next := 0
	return func(i int) {
		mu.Lock()
		defer mu.Unlock()
		done[i] = true
		for next < len(results) && done[next] {
			fn(&results[next])
			next++
		}
	}
}

// RunPoint executes one grid point to completion and returns its
// Result. Exported so tests and benchmarks can run single points; the
// campaign's determinism rests on this function depending only on
// (g, p), never on shared state.
func RunPoint(g Grid, p Point) (res Result) {
	res = Result{Point: p, ChaosOK: true}
	wallStart := time.Now()
	defer func() { res.Wall = time.Since(wallStart) }()

	topo, err := dtp.ParseTopology(p.Topo)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	opts := []dtp.Option{
		dtp.WithSeed(p.Seed),
		dtp.WithBeaconInterval(p.Beacon),
	}
	if p.Hardened {
		opts = append(opts, dtp.WithHardened())
	}
	if g.Wander {
		opts = append(opts, dtp.WithWander(10*time.Millisecond, 100))
	}
	if g.BER > 0 {
		opts = append(opts, dtp.WithBER(g.BER), dtp.WithParity())
	}
	// FlightDir arms the observability plane: every run gets its own
	// registry + tracer (runs stay independent), a timeline, and a
	// flight recorder dumping into the run's directory.
	flightRun := ""
	if g.FlightDir != "" {
		flightRun = filepath.Join(g.FlightDir, fmt.Sprintf("run-%03d", p.Index))
		opts = append(opts, dtp.WithTelemetry(dtp.NewMetricsRegistry(), dtp.NewTracer(0)))
	}
	var scenario *dtp.ChaosScenario
	if p.Chaos != "" {
		if scenario, err = dtp.LoadChaosScenario(p.Chaos); err != nil {
			res.Err = err.Error()
			return res
		}
	}
	if p.Liars > 0 {
		scenario, err = withLiars(scenario, topo, p)
		if err != nil {
			res.Err = err.Error()
			return res
		}
	}
	sys, err := dtp.New(topo, opts...)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	defer sys.Close()

	aud := sys.Audit(dtp.AuditOptions{Interval: g.AuditEvery.Std()})
	var eng *dtp.ChaosEngine
	if scenario != nil {
		if eng, err = sys.Chaos(dtp.ChaosOptions{Scenario: scenario, Auditor: aud}); err != nil {
			res.Err = err.Error()
			return res
		}
	}

	sys.Start()
	if err := sys.RunUntilSynced(g.SyncTimeout.Std()); err != nil {
		res.Err = err.Error()
		return res
	}
	res.Synced = true
	res.TimeToSyncUs = sys.Now().Seconds() * 1e6

	// OWD range across every link direction, measured during INIT.
	res.OWDMinTicks, res.OWDMaxTicks = owdRange(sys)

	// Serving plane: broadcast UTC from the first host, serve intervals
	// on every other host, probe them at the sampling cadence below. The
	// compressed calibration cadence matches what the plane's own tests
	// use; the shared auditor feeds the live bound into every interval.
	var tp *dtp.TimePlane
	if g.TimeService {
		if tp, err = sys.TimePlane(dtp.TimePlaneOptions{
			CalInterval: 10 * time.Millisecond,
			Auditor:     aud,
		}); err != nil {
			res.Err = err.Error()
			return res
		}
	}

	// Discipline probe: a daemon on the first host running the point's
	// estimator, sampled alongside the offset envelope below. The 5 ms
	// calibration cadence compresses the paper's ~1 s the same way the
	// serving plane's 10 ms does, but gives the estimator enough samples
	// to converge within even the shortest campaign windows.
	var probe *dtp.Daemon
	if p.Discipline != "" {
		dc, derr := dtp.ParseDiscipline(p.Discipline)
		if derr != nil {
			res.Err = derr.Error()
			return res
		}
		host := firstHost(sys)
		if host == "" {
			res.Err = fmt.Sprintf("campaign: topology %q has no host for the discipline probe", p.Topo)
			return res
		}
		if probe, err = sys.Daemon(dtp.DaemonOptions{
			Host: host, CalInterval: 5 * time.Millisecond, Discipline: dc,
		}); err != nil {
			res.Err = err.Error()
			return res
		}
	}

	switch p.Load {
	case "mtu":
		sys.SetUniformLoad(1522)
	case "jumbo":
		sys.SetUniformLoad(9022)
	}

	// Timeline + flight recorder attach after Audit/TimePlane so every
	// column and state provider binds; the recorder arms on unexcused
	// bound violations and watchdog demotions, and the probe loop below
	// adds the serving-plane trigger (a read failing closed on
	// staleness).
	var tl *dtp.Timeline
	var rec *dtp.FlightRecorder
	if flightRun != "" {
		tl = sys.Timeline(dtp.TimelineOptions{Interval: g.SamplePeriod.Std()})
		if rec, err = sys.FlightRecorder(dtp.FlightOptions{Dir: flightRun}); err != nil {
			res.Err = err.Error()
			return res
		}
	}

	// Sample the worst pairwise offset at a fixed simulated cadence;
	// the percentiles summarize the sampled envelope.
	sample := g.SamplePeriod.Std()
	summary := stats.NewSummary(0)
	widths := stats.NewSummary(0)
	var probeOffs []float64
	for elapsed := time.Duration(0); elapsed < p.Duration.Std(); elapsed += sample {
		sys.Run(sample)
		off := sys.MaxOffsetTicks()
		if off > res.MaxOffsetTicks {
			res.MaxOffsetTicks = off
		}
		summary.Add(float64(off))
		if probe != nil {
			probeOffs = append(probeOffs, probe.OffsetTicks())
		}
		if tp != nil {
			for _, h := range tp.Hosts() {
				w, covered, err := tp.ReadCheck(h)
				if err != nil {
					res.TimeFailedClosed++
					// No-snapshot reads are honest warmup; a *stale*
					// snapshot means the publish loop died mid-run —
					// exactly what the black box exists to explain.
					if rec != nil && errors.Is(err, dtp.ErrTimeStale) {
						rec.Trigger("read_stale", h)
					}
					continue
				}
				res.TimeReads++
				if !covered {
					res.TimeUncovered++
				}
				widths.Add(w)
			}
		}
	}
	res.P50OffsetTicks = summary.Quantile(0.5)
	res.P99OffsetTicks = summary.Quantile(0.99)
	if probe != nil {
		res.DaemonSamples = uint64(len(probeOffs))
		res.DaemonDropped = probe.DroppedSamples()
		res.DaemonErrTicks = probe.ErrorBoundTicks()
		if math.IsInf(res.DaemonErrTicks, 0) {
			res.DaemonErrTicks = -1 // no calibration completed; JSON has no +Inf
		}
		daemonStats(&res, probeOffs, sample)
	}
	if res.TimeReads > 0 {
		res.TimeWidthP50Ps = widths.Quantile(0.5)
		res.TimeWidthP99Ps = widths.Quantile(0.99)
	}
	if tp != nil {
		for _, h := range tp.Hosts() {
			if svc, err := tp.Service(h); err == nil {
				res.TimePublishes += svc.Publishes()
			}
		}
	}
	res.BoundTicks = sys.BoundTicks()
	res.WithinBound = res.MaxOffsetTicks <= res.BoundTicks
	res.MaxOffsetNs = float64(res.MaxOffsetTicks) * sys.TickNanos()
	res.BoundNs = sys.BoundNanos()

	if eng != nil {
		// The sampling window may end before the last fault clears; the
		// campaign verdict is only valid past the scenario deadline.
		sys.RunUntil(eng.Deadline())
		if err := eng.Verify(); err != nil {
			res.ChaosOK = false
			res.ChaosErr = err.Error()
			if rec != nil {
				rec.Trigger("chaos_verify_failed", err.Error())
			}
		}
	}
	res.AuditChecks = aud.Checks()
	res.AuditViolations = aud.Violations()
	res.AuditExcused = aud.ExcusedViolations()
	res.CounterRejections, res.PortQuarantines = sys.ByzantineStats()

	if rec != nil {
		if err := writeTimeline(tl, flightRun); err != nil {
			res.Err = err.Error()
			return res
		}
		res.TimelinePath = filepath.Join(flightRun, "timeline.jsonl")
		res.FlightBundles = rec.Bundles()
		if err := rec.Err(); err != nil {
			// A bundle that failed to land is a run-level failure: the
			// operator asked for the black box and did not get it.
			res.Err = err.Error()
		}
	}
	return res
}

// firstHost returns the topology's first host name ("" when none).
func firstHost(sys *dtp.System) string {
	g := sys.Graph()
	ids := g.HostIDs()
	if len(ids) == 0 {
		return ""
	}
	return g.Nodes[ids[0]].Name
}

// daemonStats folds the probe's sampled offsets into the Result: p99
// |offset| over the second half of the window, and the convergence
// time — when the estimate first held the paper's ±4-tick band for 10
// consecutive samples (-1 = never within this window).
func daemonStats(res *Result, offs []float64, sample time.Duration) {
	s := stats.NewSummary(0)
	for _, o := range offs[len(offs)/2:] {
		s.Add(o)
	}
	res.DaemonP99OffsetTicks = math.Max(math.Abs(s.Quantile(0.99)), math.Abs(s.Quantile(0.01)))
	const band, hold = 4.0, 10
	res.DaemonConvergeUs = -1
	run := 0
	for i, o := range offs {
		if math.Abs(o) > band {
			run = 0
			continue
		}
		if run++; run == hold {
			res.DaemonConvergeUs = float64(i-hold+2) * sample.Seconds() * 1e6
			break
		}
	}
}

// withLiars appends p.Liars synthesized simultaneous Byzantine liar
// faults to the scenario (creating one when the point has no Chaos
// file). Liar devices are picked by a deterministic stride across the
// topology's host nodes (falling back to all nodes when the builder
// marked none) — a pure function of (topo, liar count), so the same
// grid point always attacks the same devices and campaign output stays
// byte-identical at any -jobs width. Hosts, not switches: a compromised
// server is the threat model, and quarantining every link of a lying
// switch would partition honest devices — a different failure mode than
// the tolerance curve measures. Fault shape follows
// examples/chaos/liar.json with timings compressed to campaign scale:
// all liars start together at 400 µs (comfortably past INIT on every
// stock topology) and lie for half the measurement window, leaving the
// other half (plus the scenario grace) for reconvergence.
func withLiars(sc *dtp.ChaosScenario, g dtp.Topology, p Point) (*dtp.ChaosScenario, error) {
	var hosts []topo.Node
	for _, n := range g.Nodes {
		if n.Kind == topo.Host {
			hosts = append(hosts, n)
		}
	}
	if len(hosts) == 0 {
		hosts = g.Nodes
	}
	if p.Liars >= len(hosts) {
		return nil, fmt.Errorf("campaign: %d liars but topology %q has only %d host devices (at least one honest host required)",
			p.Liars, p.Topo, len(hosts))
	}
	if sc == nil {
		sc = &dtp.ChaosScenario{
			Name:        fmt.Sprintf("liars-%d", p.Liars),
			SettleGrace: dtp.ChaosD(100 * time.Microsecond),
			// Reconvergence after a quarantine cooldown and re-INIT
			// round; generous enough for every liar count the curve
			// sweeps, short enough for CI.
			ReconvergeDeadline: dtp.ChaosD(3 * time.Millisecond),
		}
	}
	for i := 0; i < p.Liars; i++ {
		dev := hosts[i*len(hosts)/p.Liars]
		sc.Faults = append(sc.Faults, dtp.ChaosFault{
			Kind:      "liar",
			Device:    dev.Name,
			At:        dtp.ChaosD(400 * time.Microsecond),
			Duration:  dtp.ChaosD(p.Duration.Std() / 2),
			JumpUnits: 5000,
			Cadence:   dtp.ChaosD(2 * time.Microsecond),
		})
	}
	return sc, nil
}

// writeTimeline exports a run's timeline window as JSONL into its
// flight directory (already created by the recorder).
func writeTimeline(tl *dtp.Timeline, dir string) error {
	f, err := os.Create(filepath.Join(dir, "timeline.jsonl"))
	if err != nil {
		return err
	}
	if err := tl.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// owdRange scans every link direction for the one-way delay its port
// measured during INIT, in counter units.
func owdRange(sys *dtp.System) (lo, hi int64) {
	g := sys.Graph()
	first := true
	for _, l := range g.Links {
		a, b := g.Nodes[l.A].Name, g.Nodes[l.B].Name
		for _, dir := range [2][2]string{{a, b}, {b, a}} {
			owd, err := sys.MeasuredOWDTicks(dir[0], dir[1])
			if err != nil || owd < 0 {
				continue
			}
			if first || owd < lo {
				lo = owd
			}
			if first || owd > hi {
				hi = owd
			}
			first = false
		}
	}
	return lo, hi
}

// String renders a Point's one-line human label, prefixed by the grid
// name when set.
func (g Grid) Label(p Point) string {
	if g.Name != "" {
		return fmt.Sprintf("%s[%d] %s", g.Name, p.Index, p)
	}
	return fmt.Sprintf("[%d] %s", p.Index, p)
}
