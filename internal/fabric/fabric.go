// Package fabric is a packet-level network simulator: hosts with NICs,
// output-queued switches (store-and-forward or cut-through), byte-
// accurate serialization, FIFO egress queues with tail drop, and static
// shortest-path routing. The PTP and NTP baselines run on this fabric,
// so their precision degradation under load is an emergent property of
// real queueing rather than a tuned constant.
package fabric

import (
	"fmt"

	"github.com/dtplab/dtp/internal/eth"
	"github.com/dtplab/dtp/internal/link"
	"github.com/dtplab/dtp/internal/phy"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
	"github.com/dtplab/dtp/internal/topo"
)

// TCMode selects the transparent-clock behaviour of switches for PTP
// event frames.
type TCMode int

const (
	// TCOff disables residence-time correction.
	TCOff TCMode = iota
	// TCRealistic corrects the deterministic pipeline latency but not
	// congestion-dependent queue wait. This reproduces the field
	// observation (Zarick et al., cited by the paper §2.4.2) that
	// transparent clocks often behave like plain switches under
	// congestion: the correction is computed from calibrated constants
	// rather than a measured egress departure.
	TCRealistic
	// TCPerfect measures true residence time ingress-to-serialization
	// with only timestamp quantization noise — the textbook transparent
	// clock, available for ablation.
	TCPerfect
)

// Config describes the fabric hardware.
type Config struct {
	// Profile sets the line rate of every link (default 10 GbE).
	Profile phy.Profile
	// QueueCapBytes is the egress queue capacity per port.
	QueueCapBytes int
	// CutThrough selects cut-through switching (the paper's IBM G8264
	// is cut-through, which is known to behave well for PTP) instead of
	// store-and-forward.
	CutThrough bool
	// ProcDelay is the switch pipeline latency from ingress decision to
	// egress enqueue.
	ProcDelay sim.Time
	// HeaderBytes is how much of a frame a cut-through switch must
	// receive before forwarding begins.
	HeaderBytes int
	// TC selects the transparent-clock model for PTP event frames.
	TC TCMode
	// TCQuantNs is the transparent clock's timestamp resolution in
	// nanoseconds (correction error is uniform within ±TCQuantNs per
	// hop even when perfect).
	TCQuantNs int64
	// PTPPriority puts PTP event frames in a strict-priority queue at
	// every egress (the PFC/QoS configuration the paper's citations
	// examine). Transmission is non-preemptive: a priority frame still
	// waits out the bulk frame already on the wire, so queueing noise
	// shrinks to about one serialization time per hop rather than
	// vanishing.
	PTPPriority bool
}

// DefaultConfig returns a 10 GbE fabric with a 1 MiB egress queue and
// cut-through switching with a ~500 ns pipeline, transparent clocks in
// the realistic mode.
func DefaultConfig() Config {
	return Config{
		Profile:       phy.ProfileFor(phy.Speed10G),
		QueueCapBytes: 1 << 20,
		CutThrough:    true,
		ProcDelay:     500 * sim.Nanosecond,
		HeaderBytes:   64,
		TC:            TCRealistic,
		TCQuantNs:     8,
	}
}

// Handler consumes frames delivered to a host. rx is the arrival time of
// the frame's last bit at the NIC.
type Handler func(f *eth.Frame, rx sim.Time)

// Network is an instantiated packet fabric.
type Network struct {
	Sch   *sim.Scheduler
	Graph topo.Graph

	cfg     Config
	rng     *sim.RNG
	nextHop [][]int

	elements []*element

	// tel holds telemetry handles; the zero value (uninstrumented) is a
	// set of nil handles whose updates are no-ops. See Instrument.
	tel fabricMetrics
}

// fabricMetrics aggregates packet-path telemetry across all ports.
type fabricMetrics struct {
	tr        *telemetry.Tracer
	enqueued  *telemetry.Counter
	dropped   *telemetry.Counter
	delivered *telemetry.Counter
	queuePeak *telemetry.Gauge
}

// Instrument attaches a metrics registry and/or event tracer to the
// fabric. Either argument may be nil.
func (n *Network) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	n.tel = fabricMetrics{
		tr: tr,
		enqueued: reg.Counter("fabric_frames_enqueued_total",
			"Frames accepted into an egress queue."),
		dropped: reg.Counter("fabric_frames_dropped_total",
			"Frames tail-dropped at a full egress queue."),
		delivered: reg.Counter("fabric_frames_delivered_total",
			"Frames delivered to host protocol handlers."),
		queuePeak: reg.Gauge("fabric_queue_bytes_peak",
			"High-water mark of any single egress queue, in bytes."),
	}
}

// element is a host or switch with its egress ports.
type element struct {
	net      *Network
	node     topo.Node
	ports    map[int]*egressPort // keyed by topology link index
	handlers map[eth.Proto]Handler

	delivered uint64
}

// egressPort is one transmit queue plus its wire.
type egressPort struct {
	owner    *element
	linkIdx  int
	peerNode int
	wire     *link.Wire

	queue      []*eth.Frame // bulk traffic
	prio       []*eth.Frame // PTP event frames when PTPPriority is set
	queueBytes int
	busy       bool

	enqueued uint64
	dropped  uint64
}

// New builds a fabric over the topology graph.
func New(sch *sim.Scheduler, seed uint64, graph topo.Graph, cfg Config) (*Network, error) {
	if err := graph.Validate(); err != nil {
		return nil, err
	}
	if cfg.Profile.PeriodFs == 0 {
		return nil, fmt.Errorf("fabric: config has no PHY profile")
	}
	if cfg.QueueCapBytes <= 0 {
		return nil, fmt.Errorf("fabric: queue capacity must be positive")
	}
	n := &Network{
		Sch:     sch,
		Graph:   graph,
		cfg:     cfg,
		rng:     sim.NewRNG(seed, "fabric"),
		nextHop: graph.NextHop(),
	}
	for _, node := range graph.Nodes {
		n.elements = append(n.elements, &element{
			net:      n,
			node:     node,
			ports:    map[int]*egressPort{},
			handlers: map[eth.Proto]Handler{},
		})
	}
	for li, l := range graph.Links {
		delay := link.DelayForLength(l.LengthM)
		wa, err := link.New(sch, n.rng.Fork(fmt.Sprintf("w%da", li)), link.Config{Delay: delay})
		if err != nil {
			return nil, fmt.Errorf("fabric: link %d: %w", li, err)
		}
		wb, err := link.New(sch, n.rng.Fork(fmt.Sprintf("w%db", li)), link.Config{Delay: delay})
		if err != nil {
			return nil, fmt.Errorf("fabric: link %d: %w", li, err)
		}
		n.elements[l.A].ports[li] = &egressPort{
			owner: n.elements[l.A], linkIdx: li, peerNode: l.B, wire: wa,
		}
		n.elements[l.B].ports[li] = &egressPort{
			owner: n.elements[l.B], linkIdx: li, peerNode: l.A, wire: wb,
		}
	}
	return n, nil
}

// Config returns the fabric configuration.
func (n *Network) Config() Config { return n.cfg }

// Handle registers a protocol handler on a host node.
func (n *Network) Handle(node int, proto eth.Proto, h Handler) {
	n.elements[node].handlers[proto] = h
}

// Send injects a frame at its source host. Returns false if the egress
// queue dropped it.
func (n *Network) Send(f *eth.Frame) bool {
	if f.Size <= 0 {
		panic("fabric: frame with no size")
	}
	el := n.elements[f.Src]
	port := el.portToward(f.Dst)
	if port == nil {
		panic(fmt.Sprintf("fabric: no route %d -> %d", f.Src, f.Dst))
	}
	return port.enqueue(f)
}

// QueueDepthBytes reports the egress queue occupancy from node `from`
// toward node `dst` (next hop), for monitoring.
func (n *Network) QueueDepthBytes(from, dst int) int {
	p := n.elements[from].portToward(dst)
	if p == nil {
		return 0
	}
	return p.queueBytes
}

// Drops returns total frames tail-dropped across the fabric.
func (n *Network) Drops() uint64 {
	var total uint64
	for _, el := range n.elements {
		for _, p := range el.ports {
			total += p.dropped
		}
	}
	return total
}

// Delivered returns total frames delivered to host handlers.
func (n *Network) Delivered() uint64 {
	var total uint64
	for _, el := range n.elements {
		total += el.delivered
	}
	return total
}

func (el *element) portToward(dst int) *egressPort {
	if dst == el.node.ID {
		return nil
	}
	li := el.net.nextHop[el.node.ID][dst]
	if li < 0 {
		return nil
	}
	return el.ports[li]
}

// --- Egress queue -----------------------------------------------------

func (p *egressPort) enqueue(f *eth.Frame) bool {
	net := p.owner.net
	if p.queueBytes+f.Size > net.cfg.QueueCapBytes {
		p.dropped++
		net.tel.dropped.Inc()
		if net.tel.tr.Enabled(telemetry.KindFrameDrop) {
			net.tel.tr.Record(net.Sch.Now(), telemetry.KindFrameDrop,
				p.owner.node.Name, int64(f.Size), int64(p.linkIdx), "")
		}
		return false
	}
	p.enqueued++
	net.tel.enqueued.Inc()
	if p.owner.net.cfg.PTPPriority && f.Proto == eth.ProtoPTPEvent {
		p.prio = append(p.prio, f)
	} else {
		p.queue = append(p.queue, f)
	}
	p.queueBytes += f.Size
	net.tel.queuePeak.SetMax(float64(p.queueBytes))
	if !p.busy {
		p.startTx()
	}
	return true
}

func (p *egressPort) startTx() {
	var f *eth.Frame
	if len(p.prio) > 0 {
		f = p.prio[0]
		p.prio = p.prio[1:]
	} else {
		f = p.queue[0]
		p.queue = p.queue[1:]
	}
	p.queueBytes -= f.Size
	p.busy = true

	n := p.owner.net
	now := n.Sch.Now()
	if p.owner.node.Kind == topo.Host && f.Hops == 0 {
		// Hardware TX timestamp: first bit leaving the source NIC.
		f.TxStart = now
		if f.OnTxStart != nil {
			f.OnTxStart(now)
		}
	}
	if f.TCPending {
		// Perfect transparent clock: residence measured through to the
		// start of serialization, including all queue wait.
		f.CorrectionPs += int64(now - f.TCIngress)
		f.TCPending = false
	}
	ser := n.cfg.Profile.ByteTime(f.Size)
	// First bit hits the wire now; the receiver sees it after the
	// propagation delay and decides when the frame is usable.
	p.wire.Send(func() { n.elements[p.peerNode].firstBitArrival(f, ser) })
	// Serialization complete: the port may start the next frame after
	// the minimum interpacket gap.
	ipg := n.cfg.Profile.ByteTime(phy.MinInterpacketIdles)
	n.Sch.After(ser+ipg, func() {
		p.busy = false
		if len(p.queue) > 0 || len(p.prio) > 0 {
			p.startTx()
		}
	})
}

// firstBitArrival handles the leading edge of a frame at an element.
func (el *element) firstBitArrival(f *eth.Frame, ser sim.Time) {
	n := el.net
	if el.node.Kind == topo.Host {
		// NICs receive the whole frame before handing it up; the RX
		// hardware timestamp is the last-bit arrival.
		n.Sch.After(ser, func() { el.deliver(f) })
		return
	}
	// Switch: forward after the header (cut-through) or the whole frame
	// (store-and-forward), plus pipeline delay.
	wait := ser
	if n.cfg.CutThrough {
		wait = n.cfg.Profile.ByteTime(n.cfg.HeaderBytes)
		if wait > ser {
			wait = ser
		}
	}
	ingress := n.Sch.Now()
	n.Sch.After(wait+n.cfg.ProcDelay, func() {
		f.Hops++
		egress := el.portToward(f.Dst)
		if egress == nil {
			return // destination unreachable (should not happen)
		}
		if f.Proto == eth.ProtoPTPEvent {
			el.applyTransparentClock(f, ingress)
		}
		egress.enqueue(f)
	})
}

// applyTransparentClock adds the switch's residence-time estimate to the
// frame's correction field, per the configured TC model. ingress is the
// leading-edge arrival; the frame is about to be enqueued at egress.
func (el *element) applyTransparentClock(f *eth.Frame, ingress sim.Time) {
	n := el.net
	switch n.cfg.TC {
	case TCOff:
		return
	case TCRealistic:
		// Corrects the calibrated pipeline latency only: the wait the
		// frame is about to suffer in the egress queue goes unmeasured,
		// so under congestion the correction undershoots by the queue
		// delay — the degradation the paper observed.
		f.CorrectionPs += int64(n.Sch.Now() - ingress)
	case TCPerfect:
		// Defer the correction until serialization starts so the true
		// queue wait is included; see egressPort.startTx.
		f.TCIngress = ingress
		f.TCPending = true
	}
	// Timestamp quantization, both modes.
	if q := n.cfg.TCQuantNs; q > 0 {
		f.CorrectionPs += n.rng.Int64N(2*q*1000+1) - q*1000
	}
}

func (el *element) deliver(f *eth.Frame) {
	el.delivered++
	el.net.tel.delivered.Inc()
	if h := el.handlers[f.Proto]; h != nil {
		h(f, el.net.Sch.Now())
	}
}
